// Package budget treats matrix budget allocation as an online control
// problem. A campaign's total execution budget is spent in epochs: each
// epoch the Allocator hands every live (tool, program) cell an integer
// share of the epoch's pool, the campaign runs those shares, and the
// observed reward — marginal rf-pair coverage and first-bug events —
// feeds the next epoch's allocation through a pluggable policy.
//
// Everything is deterministic: the only randomness is a splitmix64
// stream seeded by the campaign seed, shares are computed with the
// largest-remainder method in fixed cell order, and the full allocation
// trace is recorded so a (seed, policy, budget) triple reproduces the
// identical schedule bit for bit.
package budget

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

const (
	// DefaultEpochs is the number of allocation barriers per campaign.
	DefaultEpochs = 8
	// DefaultMinShare is the per-epoch execution floor below which no
	// live cell is allowed to starve.
	DefaultMinShare = 1
)

// Config selects and parameterizes an allocator. The zero value of
// Epochs and MinShare mean "use the defaults"; Policy must name a
// registered policy.
type Config struct {
	// Policy is one of Policies(): "uniform", "ucb", "eps-greedy", "fox".
	Policy string
	// Epochs is the number of allocation barriers the campaign budget
	// is spent across.
	Epochs int
	// MinShare is the per-epoch execution floor for every live cell.
	// When the pool is too small to afford the floor for everyone, the
	// floor degrades gracefully (pool/cells each, never negative).
	MinShare int
	// CollectCovers asks the campaign runner to record every cell's
	// first-cover events (pair, global execution index) in its
	// BudgetReport. Evaluation harnesses need this; plain runs do not.
	CollectCovers bool
}

// withDefaults returns c with zero fields replaced by package defaults.
func (c Config) withDefaults() Config {
	if c.Epochs == 0 {
		c.Epochs = DefaultEpochs
	}
	if c.MinShare == 0 {
		c.MinShare = DefaultMinShare
	}
	return c
}

// Validate reports whether the config names a registered policy and
// has sane epoch/floor values.
func (c Config) Validate() error {
	if !ValidPolicy(c.Policy) {
		return fmt.Errorf("budget: unknown policy %q (have %s)", c.Policy, strings.Join(Policies(), ", "))
	}
	if c.Epochs < 0 {
		return fmt.Errorf("budget: epochs must be >= 1, got %d", c.Epochs)
	}
	if c.MinShare < 0 {
		return fmt.Errorf("budget: min-share must be >= 0, got %d", c.MinShare)
	}
	return nil
}

// Reward is one cell's observed yield for one epoch.
type Reward struct {
	// Executions the cell actually ran this epoch (may be below its
	// share when the cell stopped early at a bug or error).
	Executions int
	// NewPairs is the number of never-before-seen rf-pairs the cell
	// covered this epoch, relative to its own cumulative set.
	NewPairs int
	// FirstBug marks the epoch in which the cell found its first
	// failure.
	FirstBug bool
}

// CellState is the allocator's cumulative view of one cell. Policies
// read these; only the Allocator writes them.
type CellState struct {
	// Allocated is the total executions granted across all epochs.
	Allocated int64 `json:"allocated"`
	// Spent is the total executions the cell reported back.
	Spent int64 `json:"spent"`
	// NewPairs is the cumulative count of first-covered rf-pairs.
	NewPairs int64 `json:"new_pairs"`
	// Funded is the number of epochs with a non-zero share.
	Funded int `json:"funded"`
	// LastFunded is the epoch index of the latest non-zero share, -1
	// before the first.
	LastFunded int `json:"last_funded"`
	// Rate is NewPairs/Spent, the cell's lifetime coverage yield.
	Rate float64 `json:"rate"`
	// LastRate is the latest observed epoch's NewPairs/Executions.
	LastRate float64 `json:"last_rate"`
	// Bug records that the cell reported a first-bug event.
	Bug bool `json:"bug"`
	// Done cells receive no further budget.
	Done bool `json:"done"`
}

// EpochAllocation is one entry of the deterministic allocation trace.
type EpochAllocation struct {
	Epoch  int   `json:"epoch"`
	Pool   int   `json:"pool"`
	Shares []int `json:"shares"`
}

// Allocator drives the epoch loop for a fixed set of cells. It is not
// safe for concurrent use; campaigns call it only at epoch barriers.
type Allocator struct {
	cfg    Config
	policy policy
	cells  []CellState
	rng    *Rand
	epoch  int
	trace  []EpochAllocation
	prev   []int
	moves  int
}

// New builds an allocator for n cells. The seed feeds the policy's
// splitmix64 stream; identical (n, seed, cfg) triples produce
// bit-identical allocation traces for identical reward streams.
func New(n int, seed int64, cfg Config) (*Allocator, error) {
	if n < 1 {
		return nil, fmt.Errorf("budget: need at least one cell, got %d", n)
	}
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Epochs < 1 {
		return nil, fmt.Errorf("budget: epochs must be >= 1, got %d", cfg.Epochs)
	}
	a := &Allocator{
		cfg:    cfg,
		policy: newPolicy(cfg.Policy),
		cells:  make([]CellState, n),
		rng:    NewRand(seed),
	}
	for i := range a.cells {
		a.cells[i].LastFunded = -1
	}
	return a, nil
}

// Config returns the allocator's effective (default-filled) config.
func (a *Allocator) Config() Config { return a.cfg }

// Epoch returns the number of Allocate calls so far.
func (a *Allocator) Epoch() int { return a.epoch }

// Active returns the number of cells still eligible for budget.
func (a *Allocator) Active() int {
	n := 0
	for i := range a.cells {
		if !a.cells[i].Done {
			n++
		}
	}
	return n
}

// Allocate splits pool executions across the live cells for the next
// epoch and returns one integer share per cell. Shares are
// non-negative, sum to min(pool, affordable), respect the MinShare
// floor whenever the pool can afford it, and are zero for done cells.
func (a *Allocator) Allocate(pool int) []int {
	shares := make([]int, len(a.cells))
	var active []int
	for i := range a.cells {
		if !a.cells[i].Done {
			active = append(active, i)
		}
	}
	if pool > 0 && len(active) > 0 {
		a.split(pool, active, shares)
	}
	for i, s := range shares {
		if s > 0 {
			a.cells[i].Allocated += int64(s)
			a.cells[i].Funded++
			a.cells[i].LastFunded = a.epoch
		}
	}
	if a.prev != nil {
		for i := range shares {
			if shares[i] != a.prev[i] {
				a.moves++
			}
		}
	}
	a.prev = append([]int(nil), shares...)
	a.trace = append(a.trace, EpochAllocation{
		Epoch:  a.epoch,
		Pool:   pool,
		Shares: append([]int(nil), shares...),
	})
	a.epoch++
	return shares
}

// split fills shares for the active cells: a uniform floor first, then
// the remainder proportional to the policy's weights via the
// largest-remainder method (ties broken by cell order, so the result
// is a pure function of the inputs).
func (a *Allocator) split(pool int, active []int, shares []int) {
	floor := a.cfg.MinShare
	if floor*len(active) > pool {
		floor = pool / len(active)
	}
	if floor == 0 {
		// Fewer executions than live cells: one each, in cell order,
		// until the pool runs out.
		for k := 0; k < pool && k < len(active); k++ {
			shares[active[k]] = 1
		}
		return
	}
	rem := pool - floor*len(active)
	for _, i := range active {
		shares[i] = floor
	}
	if rem == 0 {
		return
	}

	w := make([]float64, len(a.cells))
	a.policy.weights(a.cells, a.epoch, a.rng, w)
	sum := 0.0
	for _, i := range active {
		if w[i] < 0 || math.IsNaN(w[i]) || math.IsInf(w[i], 0) {
			w[i] = 0
		}
		sum += w[i]
	}
	if sum <= 0 {
		for _, i := range active {
			w[i] = 1
		}
		sum = float64(len(active))
	}

	type frac struct {
		idx int
		rem float64
	}
	fracs := make([]frac, 0, len(active))
	used := 0
	for _, i := range active {
		exact := float64(rem) * w[i] / sum
		whole := int(exact)
		shares[i] += whole
		used += whole
		fracs = append(fracs, frac{i, exact - float64(whole)})
	}
	sort.SliceStable(fracs, func(x, y int) bool { return fracs[x].rem > fracs[y].rem })
	for k := 0; k < rem-used; k++ {
		shares[fracs[k%len(fracs)].idx]++
	}
}

// Observe feeds one cell's epoch reward back into the allocator.
func (a *Allocator) Observe(cell int, r Reward) {
	c := &a.cells[cell]
	c.Spent += int64(r.Executions)
	c.NewPairs += int64(r.NewPairs)
	if c.Spent > 0 {
		c.Rate = float64(c.NewPairs) / float64(c.Spent)
	}
	if r.Executions > 0 {
		c.LastRate = float64(r.NewPairs) / float64(r.Executions)
	}
	if r.FirstBug {
		c.Bug = true
	}
}

// MarkDone removes a cell from all future allocations; its share flows
// back to the live cells.
func (a *Allocator) MarkDone(cell int) { a.cells[cell].Done = true }

// Done reports whether a cell has been marked done.
func (a *Allocator) Done(cell int) bool { return a.cells[cell].Done }

// Reallocations counts, across all epochs after the first, cells whose
// share differed from their previous-epoch share.
func (a *Allocator) Reallocations() int { return a.moves }

// Trace returns the full allocation history, one entry per epoch.
func (a *Allocator) Trace() []EpochAllocation { return a.trace }

// Cells returns a copy of the per-cell cumulative state.
func (a *Allocator) Cells() []CellState {
	return append([]CellState(nil), a.cells...)
}

// Rand is a splitmix64 stream: tiny, fast, and identical on every
// platform, which is all the determinism argument needs.
type Rand struct{ state uint64 }

// NewRand seeds a stream. Distinct seeds give independent streams.
func NewRand(seed int64) *Rand {
	return &Rand{state: uint64(seed) ^ 0x9E3779B97F4A7C15}
}

// Uint64 advances the stream.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Intn returns a value in [0, n). n must be positive.
func (r *Rand) Intn(n int) int { return int(r.Uint64() % uint64(n)) }

// Float64 returns a value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// EpochSeed derives the trial seed for one epoch of a cell from the
// cell's base trial seed. Epoch 0 is the identity, so a one-epoch
// uniform campaign reproduces the classic fixed-budget matrix exactly.
func EpochSeed(seed int64, epoch int) int64 {
	if epoch == 0 {
		return seed
	}
	z := uint64(seed) + uint64(epoch)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}
