package budget

import (
	"fmt"
	"strings"
	"testing"
)

// traceString renders an allocation trace in a compact, diffable form.
func traceString(tr []EpochAllocation) string {
	var b strings.Builder
	for _, e := range tr {
		if e.Epoch > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "e%d:%v", e.Epoch, e.Shares)
	}
	return b.String()
}

// TestGoldenTraces pins the exact allocation schedule of every policy
// at seeds 1-3 under a fixed synthetic reward stream (4 cells, 5
// epochs, pool 100). Any change to a policy's arithmetic, the
// largest-remainder split, or the splitmix64 stream shows up here as a
// readable share-vector diff.
func TestGoldenTraces(t *testing.T) {
	golden := map[string][3]string{
		"uniform": {
			"e0:[25 25 25 25] e1:[25 25 25 25] e2:[25 25 25 25] e3:[25 25 25 25] e4:[25 25 25 25]",
			"e0:[25 25 25 25] e1:[25 25 25 25] e2:[25 25 25 25] e3:[25 25 25 25] e4:[25 25 25 25]",
			"e0:[25 25 25 25] e1:[25 25 25 25] e2:[25 25 25 25] e3:[25 25 25 25] e4:[25 25 25 25]",
		},
		"ucb": {
			"e0:[25 25 25 25] e1:[24 22 26 28] e2:[22 29 23 26] e3:[22 27 24 27] e4:[23 28 24 25]",
			"e0:[25 25 25 25] e1:[28 21 29 22] e2:[28 23 24 25] e3:[25 24 25 26] e4:[25 25 25 25]",
			"e0:[25 25 25 25] e1:[31 19 24 26] e2:[26 23 25 26] e3:[26 26 24 24] e4:[27 28 24 21]",
		},
		"eps-greedy": {
			"e0:[25 25 25 25] e1:[4 3 3 90] e2:[4 3 3 90] e3:[4 3 90 3] e4:[4 3 3 90]",
			"e0:[25 25 25 25] e1:[4 3 90 3] e2:[90 4 3 3] e3:[4 3 90 3] e4:[90 4 3 3]",
			"e0:[25 25 25 25] e1:[90 4 3 3] e2:[90 4 3 3] e3:[4 3 90 3] e4:[90 4 3 3]",
		},
		"fox": {
			"e0:[25 25 25 25] e1:[21 16 28 35] e2:[15 24 23 38] e3:[14 17 18 51] e4:[8 19 15 58]",
			"e0:[25 25 25 25] e1:[33 16 34 17] e2:[44 12 30 14] e3:[46 13 22 19] e4:[42 11 31 16]",
			"e0:[25 25 25 25] e1:[35 17 23 25] e2:[39 19 15 27] e3:[28 23 23 26] e4:[19 24 28 29]",
		},
	}
	for _, policy := range Policies() {
		want, ok := golden[policy]
		if !ok {
			t.Errorf("no golden trace for policy %q — add one", policy)
			continue
		}
		for seed := int64(1); seed <= 3; seed++ {
			a := runStream(t, policy, seed, 4, 5, 100)
			got := traceString(a.Trace())
			if got != want[seed-1] {
				t.Errorf("policy %s seed %d:\n got  %q\n want %q", policy, seed, got, want[seed-1])
			}
		}
	}
}
