package minimize_test

import (
	"testing"

	"rff/internal/bench"
	"rff/internal/core"
	"rff/internal/minimize"
)

// propertyCorpus spans every failure kind and several suites while
// staying small enough for an ordinary test run. The big reorder/
// twostage instances are excluded: fuzzing them to a failure dominates
// runtime without exercising anything new in the minimizer.
var propertyCorpus = []string{
	"CB/aget-bug2",
	"CB/pbzip2-0.9.4",
	"CS/account",
	"CS/deadlock01",
	"CS/lazy01",
	"CS/queue",
	"CS/reorder_4",
	"CS/twostage",
	"CS/wronglock",
	"Chess/WorkStealQueue",
	"ConVul-CVE-Benchmarks/CVE-2013-1792",
	"ConVul-CVE-Benchmarks/CVE-2016-1972",
	"Extras/reorder_2",
	"Extras/semaphore_leak",
	"Inspect_benchmarks/boundedBuffer",
}

// TestMinimizePropertyAcrossCorpus is the minimizer's core property,
// checked per bench program: for any failure the fuzzer finds,
// replaying Result.Switches reproduces a failure of the original kind,
// and the switch set never grows.
func TestMinimizePropertyAcrossCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus-wide property test is slow under -short")
	}
	for _, name := range propertyCorpus {
		t.Run(name, func(t *testing.T) {
			p := bench.MustGet(name)
			rep := core.NewFuzzer(p.Name, p.Body, core.Options{
				Budget: 3000, Seed: 17, StopAtFirstBug: true,
			}).Run()
			if !rep.FoundBug() {
				t.Skipf("fuzzer found no failure in budget on %s", name)
			}
			fr := rep.Failures[0]
			res := minimize.Minimize(p.Name, p.Body, fr.Decisions, fr.Failure, minimize.Options{})
			if res == nil {
				t.Fatalf("recorded schedule failed to reproduce on %s", name)
			}
			if res.MinimalSwitches > res.OriginalSwitches {
				t.Fatalf("minimization grew the switch count: %d -> %d",
					res.OriginalSwitches, res.MinimalSwitches)
			}
			f := minimize.Replay(p.Name, p.Body, res.Switches, 0)
			if f == nil {
				t.Fatalf("minimal switch set did not fail (original %v, %d switches)",
					fr.Failure.Kind, res.MinimalSwitches)
			}
			if f.Kind != fr.Failure.Kind {
				t.Fatalf("replayed failure kind %v, original %v", f.Kind, fr.Failure.Kind)
			}
			t.Logf("%s: switches %d -> %d, %d probes, %d preemptions",
				name, res.OriginalSwitches, res.MinimalSwitches, res.Probes, res.Preemptions)
		})
	}
}
