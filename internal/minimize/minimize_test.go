package minimize_test

import (
	"testing"

	"rff/internal/bench"
	"rff/internal/core"
	"rff/internal/exec"
	"rff/internal/minimize"
	"rff/internal/sched"
)

// findFailure fuzzes until the program's bug fires and returns the record.
func findFailure(t *testing.T, name string) (bench.Program, core.FailureRecord) {
	t.Helper()
	p := bench.MustGet(name)
	rep := core.NewFuzzer(p.Name, p.Body, core.Options{
		Budget: 3000, Seed: 13, StopAtFirstBug: true,
	}).Run()
	if !rep.FoundBug() {
		t.Fatalf("no failure to minimize on %s", name)
	}
	return p, rep.Failures[0]
}

func TestMinimizeReorder(t *testing.T) {
	p, fr := findFailure(t, "CS/reorder_10")
	res := minimize.Minimize(p.Name, p.Body, fr.Decisions, fr.Failure, minimize.Options{})
	if res == nil {
		t.Fatal("original schedule failed to reproduce")
	}
	if res.Failure.Kind != exec.FailAssert {
		t.Fatalf("minimized failure changed kind: %v", res.Failure)
	}
	if res.MinimalSwitches > res.OriginalSwitches {
		t.Fatalf("minimization grew the switch count: %d -> %d",
			res.OriginalSwitches, res.MinimalSwitches)
	}
	// The reorder bug is a depth-2 bug: the checker preempts one setter
	// between its two writes. Everything beyond a few preemptions is
	// exits/blocking, which no schedule avoids.
	if res.Preemptions > 4 {
		t.Errorf("expected <=4 preemptions for reorder, got %d", res.Preemptions)
	}
	if res.MinimalSwitches > res.OriginalSwitches/2+2 {
		t.Errorf("weak reduction: %d -> %d", res.OriginalSwitches, res.MinimalSwitches)
	}
	// The minimized decision sequence replays to the same failure.
	rr := exec.Run(p.Name, p.Body, exec.Config{Scheduler: sched.NewReplay(res.Decisions)})
	if rr.Failure == nil || rr.Failure.Kind != exec.FailAssert {
		t.Fatalf("minimized decisions do not replay: %v", rr.Failure)
	}
	t.Logf("switches %d -> %d in %d probes", res.OriginalSwitches, res.MinimalSwitches, res.Probes)
}

func TestMinimizeDeadlock(t *testing.T) {
	p, fr := findFailure(t, "CS/deadlock01")
	res := minimize.Minimize(p.Name, p.Body, fr.Decisions, fr.Failure, minimize.Options{})
	if res == nil {
		t.Fatal("original schedule failed to reproduce")
	}
	if res.Failure.Kind != exec.FailDeadlock {
		t.Fatalf("wrong kind: %v", res.Failure)
	}
	if res.MinimalSwitches > 4 {
		t.Errorf("ABBA deadlock should need <=4 switches, got %d", res.MinimalSwitches)
	}
}

func TestMinimizeMemoryBug(t *testing.T) {
	p, fr := findFailure(t, "ConVul-CVE-Benchmarks/CVE-2016-1973")
	res := minimize.Minimize(p.Name, p.Body, fr.Decisions, fr.Failure, minimize.Options{MatchLoc: true})
	if res == nil {
		t.Fatal("original schedule failed to reproduce")
	}
	if res.Failure.Kind != exec.FailMemory || res.Failure.Loc != fr.Failure.Loc {
		t.Fatalf("MatchLoc violated: %v vs %v", res.Failure, fr.Failure)
	}
}

func TestMinimizeRespectsProbeBudget(t *testing.T) {
	p, fr := findFailure(t, "CS/reorder_10")
	res := minimize.Minimize(p.Name, p.Body, fr.Decisions, fr.Failure, minimize.Options{MaxProbes: 5})
	if res == nil {
		t.Fatal("even the identity probe should reproduce")
	}
	if res.Probes > 5 {
		t.Fatalf("probe budget exceeded: %d", res.Probes)
	}
}

func TestMinimizeZeroBudgetReturnsOriginal(t *testing.T) {
	p, fr := findFailure(t, "CS/reorder_10")
	// A negative Budget allows no probes at all: the budget is exhausted
	// before any reduction, so the original switch set comes back
	// unminimized — never nil, which would read as "artifact broken".
	res := minimize.Minimize(p.Name, p.Body, fr.Decisions, fr.Failure, minimize.Options{Budget: -1})
	if res == nil {
		t.Fatal("exhausted budget must return the original switch set, not nil")
	}
	if res.Probes != 0 {
		t.Fatalf("negative budget ran %d probes", res.Probes)
	}
	if res.MinimalSwitches != res.OriginalSwitches {
		t.Fatalf("no probes were allowed, yet switches changed: %d -> %d",
			res.OriginalSwitches, res.MinimalSwitches)
	}
	if len(res.Decisions) != len(fr.Decisions) {
		t.Fatalf("decisions changed length: %d -> %d", len(fr.Decisions), len(res.Decisions))
	}
	if res.Failure != fr.Failure {
		t.Fatalf("failure should be the original: %v", res.Failure)
	}
	// The returned switch set still replays to the original failure kind.
	if f := minimize.Replay(p.Name, p.Body, res.Switches, 0); f == nil || f.Kind != fr.Failure.Kind {
		t.Fatalf("unminimized switch set does not replay: %v", f)
	}
}

func TestMinimizeBudgetFieldBounds(t *testing.T) {
	p, fr := findFailure(t, "CS/reorder_10")
	// Budget is the preferred knob and takes precedence over MaxProbes.
	res := minimize.Minimize(p.Name, p.Body, fr.Decisions, fr.Failure,
		minimize.Options{Budget: 3, MaxProbes: 500})
	if res == nil {
		t.Fatal("even the identity probe should reproduce")
	}
	if res.Probes > 3 {
		t.Fatalf("Budget 3 exceeded: %d probes", res.Probes)
	}
	// A zero Budget with zero MaxProbes falls back to the 2000 default
	// and therefore reduces like the legacy path.
	legacy := minimize.Minimize(p.Name, p.Body, fr.Decisions, fr.Failure, minimize.Options{})
	if legacy == nil || legacy.MinimalSwitches > legacy.OriginalSwitches {
		t.Fatalf("default-budget minimization misbehaved: %+v", legacy)
	}
}

func TestMinimizeInconsistentInputReturnsNil(t *testing.T) {
	p := bench.MustGet("CS/account")
	// A round-robin decision sequence does not fail this program.
	clean := exec.Run(p.Name, p.Body, exec.Config{Scheduler: sched.NewRoundRobin()})
	if clean.Failure != nil {
		t.Skip("round-robin unexpectedly fails account")
	}
	ghost := &exec.Failure{Kind: exec.FailAssert}
	if res := minimize.Minimize(p.Name, p.Body, clean.Trace.ThreadOrder(), ghost, minimize.Options{}); res != nil {
		t.Fatal("non-reproducing input must return nil")
	}
}
