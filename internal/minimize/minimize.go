// Package minimize shrinks a failing schedule to a minimal set of context
// switches via delta debugging. A bug found by the fuzzer typically comes
// with a decision sequence full of incidental preemptions; the minimizer
// keeps only the switches the failure actually needs, yielding the kind of
// two-or-three-switch reproduction a human can read off the trace.
package minimize

import (
	"rff/internal/exec"
)

// Switch is one forced context switch, anchored to a logical position:
// once thread After has executed Count scheduling decisions, switch to
// Thread (as soon as it is enabled). Logical anchors survive the step
// drift that removing other switches causes — "preempt setter 5 after its
// first write" stays meaningful no matter what happens upstream.
type Switch struct {
	After  exec.ThreadID
	Count  int
	Thread exec.ThreadID
}

// Options configures minimization.
type Options struct {
	// MaxSteps bounds each probe execution (0 = engine default).
	MaxSteps int
	// MatchLoc additionally requires the failure location to match the
	// original (default: kind only).
	MatchLoc bool
	// Budget bounds the number of candidate executions (probes). Zero
	// falls back to MaxProbes (and then to the 2000 default); a negative
	// Budget allows no probes at all, in which case Minimize returns the
	// original switch set unminimized rather than nil — an exhausted
	// budget is a triage throughput decision, not evidence the artifact
	// is broken.
	Budget int
	// MaxProbes is the legacy name for Budget (0 or negative = 2000).
	// Budget, when non-zero, takes precedence.
	MaxProbes int
}

// probeBudget resolves the effective probe budget from the two fields.
func (o Options) probeBudget() int {
	switch {
	case o.Budget > 0:
		return o.Budget
	case o.Budget < 0:
		return 0
	case o.MaxProbes > 0:
		return o.MaxProbes
	}
	return 2000
}

// Result reports the outcome of a minimization.
type Result struct {
	// OriginalSwitches and MinimalSwitches count context switches before
	// and after.
	OriginalSwitches int
	MinimalSwitches  int
	// Switches is the minimal forced-switch set.
	Switches []Switch
	// Decisions replays the minimized failing execution exactly.
	Decisions []exec.ThreadID
	// Preemptions counts the switches in Decisions that preempted a
	// still-enabled thread — the irreducible "bug depth" of the
	// reproduction (exits and blocking force the remaining switches).
	Preemptions int
	// Failure is the reproduced failure.
	Failure *exec.Failure
	// Probes is the number of candidate executions tried.
	Probes int
}

// switchSched runs the current thread for as long as it is enabled,
// applying forced switches in order at their logical anchors; with the
// switch list derived from a recorded decision sequence it reproduces
// that execution exactly.
type switchSched struct {
	switches []Switch
	next     int
	current  exec.ThreadID
	counts   map[exec.ThreadID]int
}

func (s *switchSched) Name() string { return "minimize" }
func (s *switchSched) Begin(int64) {
	s.next = 0
	s.current = 0
	s.counts = make(map[exec.ThreadID]int)
}

// due reports whether the next switch's anchor has been reached.
func (s *switchSched) due() bool {
	if s.next >= len(s.switches) {
		return false
	}
	sw := s.switches[s.next]
	return s.counts[sw.After] >= sw.Count
}

func (s *switchSched) pick(v *exec.View) int {
	// Forced switch that has come due and whose target is ready.
	if s.due() {
		want := s.switches[s.next].Thread
		for i, p := range v.Enabled {
			if p.Thread == want {
				s.next++
				return i
			}
		}
	}
	// Otherwise run the current thread while it can run.
	for i, p := range v.Enabled {
		if p.Thread == s.current {
			return i
		}
	}
	// Current thread blocked or exited: consume the next itinerary entry
	// early if its thread is ready, else fall to the lowest enabled.
	if s.next < len(s.switches) {
		want := s.switches[s.next].Thread
		for i, p := range v.Enabled {
			if p.Thread == want {
				s.next++
				return i
			}
		}
	}
	return 0
}

func (s *switchSched) Pick(v *exec.View) int {
	i := s.pick(v)
	s.current = v.Enabled[i].Thread
	s.counts[s.current]++
	return i
}
func (s *switchSched) Executed(exec.Event) {}
func (s *switchSched) End(*exec.Trace)     {}

// switchesOf derives the forced-switch representation of a decision
// sequence: one switch per change of executing thread, anchored to the
// preceding thread's decision count.
func switchesOf(decisions []exec.ThreadID) []Switch {
	var out []Switch
	counts := make(map[exec.ThreadID]int)
	var cur exec.ThreadID
	for _, th := range decisions {
		if th != cur {
			out = append(out, Switch{After: cur, Count: counts[cur], Thread: th})
			cur = th
		}
		counts[th]++
	}
	return out
}

// Minimize shrinks the failing schedule recorded in decisions (e.g. a
// core.FailureRecord's Decisions) to a minimal switch set that still
// reproduces the failure. Returns nil if the original schedule does not
// reproduce (which cannot happen for decisions recorded against the same
// program). If the probe budget is exhausted before the original can
// even be verified (Options.Budget <= 0 via an explicit negative value),
// the original switch set is returned unminimized instead of nil.
func Minimize(name string, prog exec.Program, decisions []exec.ThreadID, original *exec.Failure, opts Options) *Result {
	budget := opts.probeBudget()
	res := &Result{}

	matches := func(f *exec.Failure) bool {
		if f == nil || original == nil || f.Kind != original.Kind {
			return f != nil && original == nil
		}
		if opts.MatchLoc && f.Loc != original.Loc {
			return false
		}
		return true
	}

	var lastGood *exec.Result
	probe := func(sw []Switch) bool {
		if res.Probes >= budget {
			return false
		}
		res.Probes++
		sched := &switchSched{switches: sw}
		r := exec.Run(name, prog, exec.Config{Scheduler: sched, MaxSteps: opts.MaxSteps})
		if matches(r.Failure) {
			lastGood = r
			return true
		}
		return false
	}

	current := switchesOf(decisions)
	res.OriginalSwitches = len(current)
	if budget <= 0 {
		// Budget exhausted before any reduction: hand back the original
		// schedule unminimized. The caller still gets a replayable switch
		// set and decision sequence — just not a smaller one.
		res.MinimalSwitches = len(current)
		res.Switches = current
		res.Decisions = append([]exec.ThreadID(nil), decisions...)
		res.Failure = original
		res.Preemptions = countPreemptions(name, prog, res.Decisions, opts.MaxSteps)
		return res
	}
	if !probe(current) {
		return nil // original does not reproduce: inconsistent inputs
	}

	// ddmin over the switch list: remove chunks of decreasing size until
	// no single switch can be removed.
	chunk := len(current) / 2
	for chunk >= 1 {
		removedAny := false
		for start := 0; start < len(current); {
			end := start + chunk
			if end > len(current) {
				end = len(current)
			}
			candidate := make([]Switch, 0, len(current)-(end-start))
			candidate = append(candidate, current[:start]...)
			candidate = append(candidate, current[end:]...)
			if len(candidate) < len(current) && probe(candidate) {
				// Re-anchor on the switches the failing run actually
				// performed: removing a switch shifts every later step
				// index, and re-canonicalizing keeps them aligned with
				// the new execution.
				rederived := switchesOf(lastGood.Trace.ThreadOrder())
				if len(rederived) < len(candidate) {
					current = rederived
				} else {
					current = candidate
				}
				removedAny = true
				// Retry at the same position: the list shifted left.
			} else {
				start = end
			}
		}
		if !removedAny {
			chunk /= 2
		} else if chunk > len(current)/2 && len(current) > 1 {
			chunk = len(current) / 2
		}
		if chunk > len(current) {
			chunk = len(current)
		}
	}

	res.MinimalSwitches = len(current)
	res.Switches = current
	res.Decisions = lastGood.Trace.ThreadOrder()
	res.Failure = lastGood.Failure
	res.Preemptions = countPreemptions(name, prog, res.Decisions, opts.MaxSteps)
	return res
}

// Replay re-executes the program under a forced-switch set (e.g. a
// Result.Switches) and returns the execution's failure, or nil if the
// run completed cleanly. This is the consumer-facing half of the
// minimizer's contract: the minimal switch set is not just small, it
// still reproduces the bug.
func Replay(name string, prog exec.Program, switches []Switch, maxSteps int) *exec.Failure {
	s := &switchSched{switches: switches}
	return exec.Run(name, prog, exec.Config{Scheduler: s, MaxSteps: maxSteps}).Failure
}

// preemptionCounter replays a decision sequence while counting the
// switches that preempted a still-enabled thread — the measure of how
// "hard" a schedule is to stumble into, and the quantity minimization
// actually drives down (exits and blocking induce switches no scheduler
// can avoid).
type preemptionCounter struct {
	order []exec.ThreadID
	pos   int
	last  exec.ThreadID
	count int
}

func (s *preemptionCounter) Name() string { return "preemption-count" }
func (s *preemptionCounter) Begin(int64)  { s.pos = 0; s.last = 0; s.count = 0 }
func (s *preemptionCounter) Pick(v *exec.View) int {
	choice := 0
	if s.pos < len(s.order) {
		want := s.order[s.pos]
		for i, p := range v.Enabled {
			if p.Thread == want {
				choice = i
				break
			}
		}
	}
	s.pos++
	chosen := v.Enabled[choice].Thread
	if s.last != 0 && chosen != s.last {
		for _, p := range v.Enabled {
			if p.Thread == s.last {
				s.count++ // previous thread could have continued
				break
			}
		}
	}
	s.last = chosen
	return choice
}
func (s *preemptionCounter) Executed(exec.Event) {}
func (s *preemptionCounter) End(*exec.Trace)     {}

// countPreemptions replays decisions and counts preemptive switches.
func countPreemptions(name string, prog exec.Program, decisions []exec.ThreadID, maxSteps int) int {
	c := &preemptionCounter{order: decisions}
	exec.Run(name, prog, exec.Config{Scheduler: c, MaxSteps: maxSteps})
	return c.count
}
