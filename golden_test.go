// Golden regression tests for campaign determinism. These pin the exact
// observable outcomes — first-bug schedule, corpus size, feedback counts,
// per-combination frequencies, and raw reads-from signatures — of fixed
// (program, seed) campaigns. They were captured from the implementation
// before the hot-path interning/memoization overhaul and must never drift:
// a perf change that shifts any of these numbers changed the fuzzer's
// semantics, not just its speed.
//
// If an *intentional* semantic change (new mutation operator, different
// power schedule, ...) moves these numbers, re-capture them in the same
// change and say so in the commit message.
package repro

import (
	"reflect"
	"testing"

	"rff/internal/bench"
	"rff/internal/core"
	"rff/internal/exec"
	"rff/internal/sched"
)

// goldenCampaign is one pinned fuzzing campaign: 300 schedules, MaxSteps
// 5000, bugs do not stop the run.
type goldenCampaign struct {
	program  string
	seed     int64
	firstBug int
	corpus   int
	pairs    int
	sigs     int
	// freqHead is the first (up to) 8 entries of SigFrequencies in
	// first-observation order.
	freqHead []int
}

var goldenCampaigns = []goldenCampaign{
	{"CS/reorder_10", 1, 2, 12, 4, 4, []int{200, 59, 28, 13}},
	{"CS/reorder_10", 42, 4, 12, 4, 4, []int{186, 71, 28, 15}},
	{"CS/twostage_20", 1, 7, 16, 15, 7, []int{11, 174, 36, 29, 23, 3, 24}},
	{"CS/twostage_20", 42, 11, 19, 15, 8, []int{168, 63, 24, 13, 18, 7, 3, 4}},
	{"SafeStack", 1, 0, 17, 33, 31, []int{82, 10, 11, 23, 75, 7, 14, 1}},
	{"SafeStack", 42, 0, 23, 33, 34, []int{87, 76, 18, 10, 4, 4, 3, 10}},
	{"CS/account", 1, 2, 32, 6, 4, []int{84, 42, 138, 36}},
	{"CS/account", 42, 4, 34, 6, 4, []int{111, 75, 56, 58}},
}

func TestGoldenCampaignOutcomes(t *testing.T) {
	if testing.Short() {
		t.Skip("golden campaigns take a few seconds")
	}
	for _, g := range goldenCampaigns {
		g := g
		t.Run(g.program, func(t *testing.T) {
			p := bench.MustGet(g.program)
			rep := core.NewFuzzer(p.Name, p.Body, core.Options{
				Budget: 300, MaxSteps: 5000, Seed: g.seed,
			}).Run()
			if rep.FirstBug != g.firstBug {
				t.Errorf("seed %d: FirstBug = %d, want %d", g.seed, rep.FirstBug, g.firstBug)
			}
			if rep.CorpusSize != g.corpus {
				t.Errorf("seed %d: CorpusSize = %d, want %d", g.seed, rep.CorpusSize, g.corpus)
			}
			if rep.UniquePairs != g.pairs {
				t.Errorf("seed %d: UniquePairs = %d, want %d", g.seed, rep.UniquePairs, g.pairs)
			}
			if rep.UniqueSigs != g.sigs {
				t.Errorf("seed %d: UniqueSigs = %d, want %d", g.seed, rep.UniqueSigs, g.sigs)
			}
			sum := 0
			for _, f := range rep.SigFrequencies {
				sum += f
			}
			if sum != rep.Executions {
				t.Errorf("seed %d: SigFrequencies sum to %d, want %d executions", g.seed, sum, rep.Executions)
			}
			head := rep.SigFrequencies
			if len(head) > 8 {
				head = head[:8]
			}
			if !reflect.DeepEqual(head, g.freqHead) {
				t.Errorf("seed %d: SigFrequencies head = %v, want %v", g.seed, head, g.freqHead)
			}
		})
	}
}

// goldenSignatures pins raw reads-from signature values of single POS
// executions (seed 7, MaxSteps 5000) — the byte-level contract of the
// signature hash. These values predate the inlined-FNV rewrite; they hold
// iff the hash stream is bit-identical to the historical
// hash/fnv-over-strings encoding.
var goldenSignatures = []struct {
	program   string
	sig       uint64
	pairs     int
	events    int
	hashPair0 uint64
}{
	{"CS/reorder_10", 0x3694622d21854129, 2, 6, 0xbaeba3539ee7403},
	{"CS/twostage_20", 0x2e060ab4eb05b805, 10, 17, 0x6d4c53fdac0982b0},
	{"SafeStack", 0x62cbc18967b52793, 33, 49, 0xf6799eeab41ed0e6},
}

func TestGoldenSignatureValues(t *testing.T) {
	for _, g := range goldenSignatures {
		g := g
		t.Run(g.program, func(t *testing.T) {
			p := bench.MustGet(g.program)
			res := exec.Run(p.Name, p.Body, exec.Config{
				Scheduler: sched.NewPOS(), Seed: 7, MaxSteps: 5000,
			})
			tr := res.Trace
			if sig := tr.RFSignature(); sig != g.sig {
				t.Errorf("RFSignature = %#x, want %#x", sig, g.sig)
			}
			if n := len(tr.RFPairs()); n != g.pairs {
				t.Errorf("pairs = %d, want %d", n, g.pairs)
			}
			if n := len(tr.AbstractEvents()); n != g.events {
				t.Errorf("events = %d, want %d", n, g.events)
			}
			if h := exec.HashRFPair(tr.RFPairs()[0]); h != g.hashPair0 {
				t.Errorf("HashRFPair(pairs[0]) = %#x, want %#x", h, g.hashPair0)
			}
		})
	}
}
