// Reorder: the paper's Section 2 worked example. The reorder_100 program
// (Figure 1) hides its assertion violation behind an interleaving whose
// uniform-sampling probability is about 2.8e-14; RFF's reads-from guided
// search exposes it in a handful of schedules while POS and PCT burn the
// whole budget.
//
// Run with:
//
//	go run ./examples/reorder
package main

import (
	"context"
	"fmt"

	"rff/internal/bench"
	"rff/internal/strategy"
)

func main() {
	prog := bench.MustGet("CS/reorder_100")
	fmt.Printf("program: %s (%d threads)\n%s\n\n", prog.Name, prog.Threads, prog.Desc)

	const budget = 1000
	ctx := context.Background()
	tools, err := strategy.ResolveAll([]string{"rff", "pos", "pct:3"}, strategy.Config{})
	if err != nil {
		panic(err)
	}
	for _, tool := range tools {
		fmt.Printf("%-6s ", tool.Name()+":")
		for trial := int64(0); trial < 5; trial++ {
			out := tool.Run(ctx, prog, budget, 0, 100+trial)
			if out.Found() {
				fmt.Printf(" bug@%-5d", out.FirstBug)
			} else {
				fmt.Printf(" none@%-4d", out.Executions)
			}
		}
		fmt.Println()
	}
	fmt.Println("\n(paper, Appendix B: RFF 6±4, POS —, PCT3 7447±0 with misses)")
}
