// Customput: drive the proactive reads-from scheduler by hand. We write a
// program under test, harvest its abstract events from a probe execution,
// build an abstract schedule (one positive and one negative reads-from
// constraint), and watch the scheduler coerce executions into satisfying
// it — the machinery of the paper's Figure 2 without the fuzzing loop.
//
// Run with:
//
//	go run ./examples/customput
package main

import (
	"fmt"

	"rff/internal/core"
	"rff/internal/exec"
	"rff/internal/sched"
)

// pipeline: a stage writes config twice; a worker reads it once. Which
// write the worker observes (or whether it sees the initial value) is a
// pure scheduling choice.
func pipeline(t *exec.Thread) {
	config := t.NewVar("config", 0)
	stage := t.Go("stage", func(w *exec.Thread) {
		w.Write(config, 1) // draft
		w.Write(config, 2) // final
	})
	worker := t.Go("worker", func(w *exec.Thread) {
		w.Read(config)
	})
	t.JoinAll(stage, worker)
}

func main() {
	// Probe once to harvest the abstract events (op(x)@file:line).
	probe := exec.Run("pipeline", pipeline, exec.Config{Scheduler: sched.NewPOS(), Seed: 1})
	var draft, final, read exec.AbstractEvent
	for _, ae := range probe.Trace.AbstractEvents() {
		switch {
		case ae.Op == exec.OpWrite && draft.IsZero():
			draft = ae
		case ae.Op == exec.OpWrite:
			final = ae
		case ae.Op == exec.OpRead:
			read = ae
		}
	}
	fmt.Printf("abstract events: draft=%v final=%v read=%v\n\n", draft, final, read)

	// Target: the worker must observe the DRAFT config (the rare case),
	// and must NOT observe the final one.
	target := core.NewSchedule(
		core.Constraint{Write: draft, Read: read},
		core.Constraint{Write: final, Read: read, Negated: true},
	)
	fmt.Printf("target abstract schedule: %v\n\n", target)

	proactive := core.NewProactive()
	proactive.SetSchedule(target)
	hit := 0
	const runs = 100
	for seed := int64(0); seed < runs; seed++ {
		res := exec.Run("pipeline", pipeline, exec.Config{Scheduler: proactive, Seed: seed})
		if target.InstantiatedBy(res.Trace) {
			hit++
		}
	}
	fmt.Printf("proactive scheduler satisfied the schedule in %d/%d runs\n", hit, runs)

	// Baseline: how often does plain POS stumble into it?
	pos := sched.NewPOS()
	posHit := 0
	for seed := int64(0); seed < runs; seed++ {
		res := exec.Run("pipeline", pipeline, exec.Config{Scheduler: pos, Seed: seed})
		if target.InstantiatedBy(res.Trace) {
			posHit++
		}
	}
	fmt.Printf("plain POS satisfied it in %d/%d runs\n", posHit, runs)
}
