// Triage: the full bug-to-fix workflow on one program — fuzz the schedule
// space, detect the underlying data races with the happens-before
// analysis, shrink the failing schedule to its minimal context switches,
// and print the per-thread timeline a human debugs from.
//
// Run with:
//
//	go run ./examples/triage
package main

import (
	"fmt"

	"rff/internal/core"
	"rff/internal/exec"
	"rff/internal/minimize"
	"rff/internal/race"
	"rff/internal/report"
	"rff/internal/sched"
)

// barrierBug: a worker pre-stages the next phase's input because its
// phase guard reads a stale counter — an assert fires on the wrong
// interleaving, and the guard read itself races with the counter update.
func barrierBug(t *exec.Thread) {
	bar := t.NewBarrier("phase", 2)
	input := t.NewVar("input", 1)
	phase := t.NewVar("phase_no", 0)
	fast := t.Go("fast", func(w *exec.Thread) {
		if w.Read(phase) == 0 {
			w.Write(input, 2) // pre-stage phase 1 too early
		}
		w.BarrierWait(bar)
	})
	slow := t.Go("slow", func(w *exec.Thread) {
		v := w.Read(input)
		w.Write(phase, 1)
		w.BarrierWait(bar)
		w.Assertf(v == 1, "phase-0 read saw phase-1 input: %d", v)
	})
	t.JoinAll(fast, slow)
}

func main() {
	// 1. Fuzz, with the race detector piggybacking on every execution.
	raceKeys := map[string]struct{}{}
	rep := core.NewFuzzer("barrierBug", barrierBug, core.Options{
		Budget: 2000, Seed: 3, StopAtFirstBug: true,
		TraceObserver: func(tr *exec.Trace) {
			for _, k := range race.DistinctKeys(race.Detect(tr)) {
				raceKeys[k] = struct{}{}
			}
		},
	}).Run()
	if !rep.FoundBug() {
		fmt.Println("no bug found — unexpected!")
		return
	}
	f := rep.Failures[0]
	fmt.Printf("bug at schedule %d: %v\n\n", rep.FirstBug, f.Failure)

	// 2. The data races behind the failure.
	fmt.Printf("distinct data races observed while fuzzing: %d\n", len(raceKeys))
	for k := range raceKeys {
		fmt.Printf("  %s\n", k)
	}

	// 3. Shrink the reproduction.
	min := minimize.Minimize("barrierBug", barrierBug, f.Decisions, f.Failure, minimize.Options{})
	fmt.Printf("\nminimized: %d -> %d switches (%d preemptions, %d probes)\n",
		min.OriginalSwitches, min.MinimalSwitches, min.Preemptions, min.Probes)

	// 4. The timeline a human reads.
	res := exec.Run("barrierBug", barrierBug, exec.Config{Scheduler: sched.NewReplay(min.Decisions)})
	fmt.Println("\nminimal failing timeline:")
	fmt.Print(report.Timeline(res.Trace))
}
