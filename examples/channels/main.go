// Channels: fuzz the schedule space of Go-style channel programs — a
// producer/consumer handoff, a select fan-in, and a send/close race that
// crashes only on the interleavings where the closer wins.
//
// The registered equivalents live in the Chan bench suite and run from
// the CLI as e.g.:
//
//	rff run -program Chan/close_race -budget 2000
//
// Run this example with:
//
//	go run ./examples/channels
package main

import (
	"fmt"

	"rff/internal/core"
	"rff/internal/exec"
	"rff/internal/sched"
)

// prodcons hands values from two producers to a consumer over a
// capacity-2 buffered channel; the final assert holds on every schedule.
func prodcons(t *exec.Thread) {
	ch := t.NewChan("ch", 2)
	total := t.NewVar("total", 0)
	p1 := t.Go("p1", func(w *exec.Thread) { w.Send(ch, 1); w.Send(ch, 2) })
	p2 := t.Go("p2", func(w *exec.Thread) { w.Send(ch, 10); w.Send(ch, 20) })
	c := t.Go("c", func(w *exec.Thread) {
		var sum int64
		for i := 0; i < 4; i++ {
			v, _ := w.Recv(ch)
			sum += v
		}
		w.Write(total, sum)
	})
	t.JoinAll(p1, p2, c)
	t.Assertf(t.Read(total) == 33, "total %d, want 33", t.Read(total))
}

// fanin selects over two rendezvous channels; the select commits to
// whichever producer the scheduler lets arrive, deterministically per
// decision sequence.
func fanin(t *exec.Thread) {
	a := t.NewChan("a", 0)
	b := t.NewChan("b", 0)
	p1 := t.Go("p1", func(w *exec.Thread) { w.Send(a, 1) })
	p2 := t.Go("p2", func(w *exec.Thread) { w.Send(b, 2) })
	c := t.Go("c", func(w *exec.Thread) {
		var sum int64
		for i := 0; i < 2; i++ {
			_, v, _ := w.Select(exec.RecvCase(a), exec.RecvCase(b))
			sum += v
		}
		w.Assertf(sum == 3, "fan-in sum %d, want 3", sum)
	})
	t.JoinAll(p1, p2, c)
}

// closeRace crashes with "send on closed channel" exactly when the
// scheduler runs the closer before the producer — a schedule bug, not an
// input bug.
func closeRace(t *exec.Thread) {
	ch := t.NewChan("ch", 1)
	p := t.Go("p", func(w *exec.Thread) { w.Send(ch, 1) })
	k := t.Go("k", func(w *exec.Thread) { w.Close(ch) })
	c := t.Go("c", func(w *exec.Thread) { w.TryRecv(ch) })
	t.JoinAll(p, k, c)
}

func main() {
	// The correct programs: fuzz and expect no failures.
	for _, p := range []struct {
		name string
		body exec.Program
	}{{"prodcons", prodcons}, {"fanin", fanin}} {
		rep := core.NewFuzzer(p.name, p.body, core.Options{Budget: 500, Seed: 1}).Run()
		fmt.Printf("%-9s %d schedules, bugs found: %v\n", p.name, rep.Executions, rep.FoundBug())
	}

	// The racy close: find the crashing schedule, then replay it.
	rep := core.NewFuzzer("closeRace", closeRace, core.Options{
		Budget: 2000, Seed: 1, StopAtFirstBug: true,
	}).Run()
	if !rep.FoundBug() {
		fmt.Println("closeRace: no bug found — unexpected!")
		return
	}
	f := rep.Failures[0]
	fmt.Printf("closeRace: %v after %d schedules\n", f.Failure, rep.FirstBug)

	res := exec.Run("closeRace", closeRace, exec.Config{
		Scheduler: sched.NewReplay(f.Decisions),
	})
	fmt.Printf("replay:    %v (deterministic)\n", res.Failure)
}
