// Quickstart: write a racy program against the controlled execution
// engine, fuzz its schedule space with RFF, and replay the failing
// schedule deterministically.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"rff/internal/core"
	"rff/internal/exec"
	"rff/internal/sched"
)

// bankAccount is a classic lost-update race: deposit and withdraw both
// read-modify-write the balance without holding the lock.
func bankAccount(t *exec.Thread) {
	balance := t.NewVar("balance", 100)

	deposit := t.Go("deposit", func(w *exec.Thread) {
		b := w.Read(balance)   // scheduling point: read event
		w.Write(balance, b+50) // scheduling point: write event
	})
	withdraw := t.Go("withdraw", func(w *exec.Thread) {
		b := w.Read(balance)
		w.Write(balance, b-50)
	})
	t.JoinAll(deposit, withdraw)

	t.Assert(t.Read(balance) == 100, "an update was lost")
}

func main() {
	// 1. Fuzz the schedule space (input is fixed; schedules vary).
	rep := core.NewFuzzer("bankAccount", bankAccount, core.Options{
		Budget:         1000, // at most 1000 schedules
		Seed:           42,
		StopAtFirstBug: true,
	}).Run()

	if !rep.FoundBug() {
		fmt.Println("no bug found — unexpected for this program!")
		return
	}
	failure := rep.Failures[0]
	fmt.Printf("bug found after %d schedules: %v\n", rep.FirstBug, failure.Failure)
	fmt.Printf("abstract schedule driven at the time: %v\n", failure.Schedule)

	// 2. Replay the exact failing interleaving, deterministically.
	replay := exec.Run("bankAccount", bankAccount, exec.Config{
		Scheduler: sched.NewReplay(failure.Decisions),
	})
	fmt.Printf("replay reproduces the failure: %v\n", replay.Failure)

	// 3. Inspect the failing trace's reads-from relation.
	fmt.Println("reads-from pairs of the failing execution:")
	for _, p := range replay.Trace.RFPairs() {
		fmt.Printf("  %v\n", p)
	}
}
