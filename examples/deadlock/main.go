// Deadlock: the engine's built-in deadlock detector at work on an ABBA
// lock cycle and on a lost condition-variable signal, including replay.
//
// Run with:
//
//	go run ./examples/deadlock
package main

import (
	"fmt"

	"rff/internal/core"
	"rff/internal/exec"
	"rff/internal/sched"
)

// abba acquires two locks in opposite orders from two threads.
func abba(t *exec.Thread) {
	m1 := t.NewMutex("disk")
	m2 := t.NewMutex("journal")
	a := t.Go("flusher", func(w *exec.Thread) {
		w.Lock(m1)
		w.Yield() // widen the window
		w.Lock(m2)
		w.Unlock(m2)
		w.Unlock(m1)
	})
	b := t.Go("committer", func(w *exec.Thread) {
		w.Lock(m2)
		w.Yield()
		w.Lock(m1)
		w.Unlock(m1)
		w.Unlock(m2)
	})
	t.JoinAll(a, b)
}

// lostSignal checks the ready flag outside the mutex, so the producer's
// only signal can fire before the consumer waits.
func lostSignal(t *exec.Thread) {
	m := t.NewMutex("m")
	cv := t.NewCond("cv", m)
	ready := t.NewVar("ready", 0)
	consumer := t.Go("consumer", func(w *exec.Thread) {
		if w.Read(ready) == 0 { // BUG: unlocked check
			w.Lock(m)
			w.Wait(cv)
			w.Unlock(m)
		}
	})
	producer := t.Go("producer", func(w *exec.Thread) {
		w.Write(ready, 1)
		w.Lock(m)
		w.Signal(cv)
		w.Unlock(m)
	})
	t.JoinAll(consumer, producer)
}

func hunt(name string, prog exec.Program) {
	rep := core.NewFuzzer(name, prog, core.Options{
		Budget: 2000, Seed: 7, StopAtFirstBug: true,
	}).Run()
	if !rep.FoundBug() {
		fmt.Printf("%s: no deadlock found in %d schedules\n", name, rep.Executions)
		return
	}
	f := rep.Failures[0]
	fmt.Printf("%s: deadlock after %d schedules\n  %v\n", name, rep.FirstBug, f.Failure)

	replay := exec.Run(name, prog, exec.Config{Scheduler: sched.NewReplay(f.Decisions)})
	fmt.Printf("  replay agrees: %v\n\n", replay.Failure != nil && replay.Failure.Kind == exec.FailDeadlock)
}

func main() {
	hunt("abba", abba)
	hunt("lostSignal", lostSignal)
}
