// Performance microbenchmarks for the execute→observe hot loop — the
// quantities that determine how many schedules a wall-clock budget buys.
// Unlike bench_test.go (which regenerates the paper's evaluation figures),
// these benches track the repo's own performance trajectory: run with
//
//	go test -bench='Perf' -benchmem
//
// and compare allocs/op and ns/op across PRs. cmd/rffbench's `perf`
// subcommand runs the same workloads outside the testing framework and
// records the numbers in BENCH_perf.json.
package repro

import (
	"testing"

	"rff/internal/bench"
	"rff/internal/core"
	"rff/internal/exec"
	"rff/internal/sched"
)

// perfPrograms is the workload mix used by the perf benchmarks: a small
// data-race subject, a lock-heavy mid-size subject, and the headline
// SafeStack subject with long traces.
var perfPrograms = []string{"CS/reorder_10", "CS/twostage_20", "SafeStack"}

// BenchmarkPerfExecuteObserve measures the full fuzzing inner loop —
// mutate, execute under the proactive scheduler, observe feedback, extend
// the pool — per schedule. This is the paper's schedules-per-second
// number; allocs/op is the headline regression metric.
func BenchmarkPerfExecuteObserve(b *testing.B) {
	for _, name := range perfPrograms {
		p := bench.MustGet(name)
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			f := core.NewFuzzer(p.Name, p.Body, core.Options{
				Budget:   b.N,
				MaxSteps: 5000,
				Seed:     1,
			})
			b.ResetTimer()
			rep := f.Run()
			if rep.Executions != b.N {
				b.Fatalf("ran %d schedules, want %d", rep.Executions, b.N)
			}
		})
	}
}

// BenchmarkPerfEngineOnly measures the raw engine (no fuzzing loop): one
// controlled execution under POS per iteration — the floor the fuzzer's
// overhead sits on.
func BenchmarkPerfEngineOnly(b *testing.B) {
	for _, name := range perfPrograms {
		p := bench.MustGet(name)
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			s := sched.NewPOS()
			cfg := exec.Config{Scheduler: s, MaxSteps: 5000}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cfg.Seed = int64(i)
				res := exec.Run(p.Name, p.Body, cfg)
				if res.Trace.Len() == 0 {
					b.Fatal("empty trace")
				}
			}
		})
	}
}

// BenchmarkPerfTraceFeedback measures the per-trace feedback derivation
// (reads-from pairs + signature + abstract events) as consumed by
// Feedback.Observe and EventPool.AddTrace — the cost of "observe" alone,
// on a fresh trace each iteration.
func BenchmarkPerfTraceFeedback(b *testing.B) {
	for _, name := range perfPrograms {
		p := bench.MustGet(name)
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			fb := core.NewFeedback()
			pool := core.NewEventPool()
			s := sched.NewPOS()
			cfg := exec.Config{Scheduler: s, MaxSteps: 5000}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				cfg.Seed = int64(i)
				res := exec.Run(p.Name, p.Body, cfg)
				b.StartTimer()
				fb.Observe(res.Trace)
				pool.AddTrace(res.Trace)
			}
		})
	}
}
